// Property-based / metamorphic tests for the Monge kernels: instead of
// comparing two implementations on one instance (tests/test_fuzz.cpp),
// each test states an algebraic identity the *problem* obeys -- transpose
// duality, negation duality, offset invariance, restriction closure --
// and checks that the kernels respect it on random instances.  These
// catch a different failure class than differential fuzzing: a bug
// shared by every implementation (e.g. a wrong tie-breaking convention
// baked into both SMAWK and the PRAM kernel) breaks an identity even
// though all implementations still agree with each other.
//
// Seeds come from the same corpus + PMONGE_FUZZ_SEED override as the
// fuzz suite, and every failure prints one copy-pastable repro line:
//
//   PMONGE_FUZZ_SEED=<seed> ctest -R properties --output-on-failure
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench_util.hpp"
#include "monge/array.hpp"
#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "monge/smawk.hpp"
#include "monge/staircase_seq.hpp"
#include "monge/validate.hpp"
#include "par/monge_rowminima.hpp"
#include "par/staircase_rowminima.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace pmonge {
namespace {

using monge::DenseArray;
using monge::kNoCol;
using monge::RowOpt;
using monge::StaircaseArray;
using pram::Machine;
using pram::Model;

std::vector<std::uint64_t> property_seeds() {
  std::vector<std::uint64_t> seeds{1, 2, 3, 5, 8, 13, 21, 34};
  if (auto extra = support::env_uint("PMONGE_FUZZ_SEED")) {
    seeds.push_back(*extra);
  }
  return seeds;
}

std::string repro(std::uint64_t seed) {
  return bench::repro_line("PMONGE_FUZZ_SEED=" + std::to_string(seed),
                           "properties");
}

class Properties : public ::testing::TestWithParam<std::uint64_t> {};

std::pair<std::size_t, std::size_t> random_shape(Rng& rng, std::size_t hi) {
  return {1 + static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(hi))),
          1 + static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(hi)))};
}

TEST_P(Properties, TransposeDuality) {
  // Monge-ness survives transposition, and the row minima of the
  // transpose ARE the column minima of the original -- computed naively
  // straight from the definition, not via any kernel.
  Rng rng(GetParam());
  for (int t = 0; t < 6; ++t) {
    const auto [m, n] = random_shape(rng, 50);
    const auto a = monge::random_monge(m, n, rng, 2, 15);  // tie-heavy
    monge::Transpose<DenseArray<std::int64_t>> tr(a);
    ASSERT_TRUE(monge::is_monge(tr)) << repro(GetParam());
    const auto got = monge::smawk_row_minima(tr);
    ASSERT_EQ(got.size(), n) << repro(GetParam());
    for (std::size_t j = 0; j < n; ++j) {
      RowOpt<std::int64_t> want{a(0, j), 0};
      for (std::size_t i = 1; i < m; ++i) {
        if (a(i, j) < want.value) want = {a(i, j), i};
      }
      EXPECT_EQ(got[j], want)
          << repro(GetParam()) << " (col " << j << ", m=" << m << " n=" << n
          << ")";
    }
  }
}

TEST_P(Properties, NegationDuality) {
  // Negation maps Monge <-> inverse-Monge and minima <-> maxima.  The
  // leftmost minimum of row i of `a` is the leftmost maximum of row i of
  // `-a`: same column, negated value.  This pins the tie-breaking
  // convention across the min and max kernel pair -- two kernels could
  // agree with their own brute oracles yet break this if one preferred
  // rightmost winners.
  Rng rng(GetParam() + 1000);
  for (int t = 0; t < 6; ++t) {
    const auto [m, n] = random_shape(rng, 50);
    const auto a = monge::random_monge(m, n, rng, 2, 15);
    monge::Negate<DenseArray<std::int64_t>> neg(a);
    ASSERT_TRUE(monge::is_inverse_monge(neg)) << repro(GetParam());
    const auto mins = monge::smawk_row_minima(a);
    const auto maxs = monge::smawk_row_maxima_inverse_monge(neg);
    ASSERT_EQ(mins.size(), maxs.size());
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(maxs[i].col, mins[i].col)
          << repro(GetParam()) << " (row " << i << ")";
      EXPECT_EQ(maxs[i].value, -mins[i].value)
          << repro(GetParam()) << " (row " << i << ")";
    }
  }
}

TEST_P(Properties, ReverseColsMapsBetweenClasses) {
  // Reversing columns swaps the Monge and inverse-Monge classes while
  // preserving each row's multiset of values: the min/max VALUES per row
  // are invariant (indices mirror, and leftmost-in-reversed =
  // rightmost-in-original, so only values are comparable).
  Rng rng(GetParam() + 2000);
  for (int t = 0; t < 6; ++t) {
    const auto [m, n] = random_shape(rng, 50);
    const auto a = monge::random_monge(m, n, rng, 2, 15);
    monge::ReverseCols<DenseArray<std::int64_t>> rev(a);
    ASSERT_TRUE(monge::is_inverse_monge(rev)) << repro(GetParam());
    const auto mins = monge::smawk_row_minima(a);
    const auto rmins = monge::smawk_row_minima_inverse_monge(rev);
    const auto rbrute = monge::row_minima_brute(rev);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(rmins[i].value, mins[i].value)
          << repro(GetParam()) << " (row " << i << ")";
      EXPECT_EQ(rmins[i], rbrute[i])
          << repro(GetParam()) << " (row " << i << ")";
    }
  }
}

TEST_P(Properties, OffsetInvariance) {
  // a'(i,j) = a(i,j) + r_i + c_j preserves Monge-ness (the quadrangle
  // inequality is invariant under rank-one offsets).  Row offsets alone
  // even preserve the argmin columns exactly -- including leftmost tie
  // winners, since every within-row comparison is shifted equally.
  Rng rng(GetParam() + 3000);
  for (int t = 0; t < 5; ++t) {
    const auto [m, n] = random_shape(rng, 40);
    const auto a = monge::random_monge(m, n, rng, 2, 15);
    std::vector<std::int64_t> r(m), c(n);
    for (auto& v : r) v = rng.uniform_int(-50, 50);
    for (auto& v : c) v = rng.uniform_int(-50, 50);

    const auto row_only = monge::make_func_array<std::int64_t>(
        m, n, [&](std::size_t i, std::size_t j) { return a(i, j) + r[i]; });
    ASSERT_TRUE(monge::is_monge(row_only)) << repro(GetParam());
    const auto base_mins = monge::smawk_row_minima(a);
    const auto shifted = monge::smawk_row_minima(row_only);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(shifted[i].col, base_mins[i].col)
          << repro(GetParam()) << " (row " << i << ")";
      EXPECT_EQ(shifted[i].value, base_mins[i].value + r[i])
          << repro(GetParam()) << " (row " << i << ")";
    }

    // Column offsets move the argmins, but the class is closed: the
    // kernel must still match brute on the offset array.
    const auto both = monge::make_func_array<std::int64_t>(
        m, n,
        [&](std::size_t i, std::size_t j) { return a(i, j) + r[i] + c[j]; });
    ASSERT_TRUE(monge::is_monge(both)) << repro(GetParam());
    EXPECT_EQ(monge::smawk_row_minima(both), monge::row_minima_brute(both))
        << repro(GetParam()) << " (m=" << m << " n=" << n << ")";
  }
}

TEST_P(Properties, SubArrayRestriction) {
  // Any contiguous sub-block of a Monge array is Monge, and both the
  // sequential and the PRAM kernel must solve it exactly.  When the
  // parent row's argmin happens to land inside the selected column
  // window, the sub-block's answer must be that same entry.
  Rng rng(GetParam() + 4000);
  for (int t = 0; t < 5; ++t) {
    const auto [m, n] = random_shape(rng, 48);
    const auto a = monge::random_monge(m, n, rng, 2, 15);
    const std::size_t r0 =
        static_cast<std::size_t>(rng.uniform_int(0, m - 1));
    const std::size_t nr = 1 + static_cast<std::size_t>(
                                   rng.uniform_int(0, m - 1 - r0));
    const std::size_t c0 =
        static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const std::size_t nc = 1 + static_cast<std::size_t>(
                                   rng.uniform_int(0, n - 1 - c0));
    monge::SubArray<DenseArray<std::int64_t>> sub(a, r0, nr, c0, nc);
    ASSERT_TRUE(monge::is_monge(sub)) << repro(GetParam());
    const auto want = monge::row_minima_brute(sub);
    EXPECT_EQ(monge::smawk_row_minima(sub), want) << repro(GetParam());
    Machine mach(Model::CRCW_COMMON);
    EXPECT_EQ(par::monge_row_minima(mach, sub), want) << repro(GetParam());

    const auto parent = monge::smawk_row_minima(a);
    for (std::size_t i = 0; i < nr; ++i) {
      const auto& p = parent[r0 + i];
      if (p.col >= c0 && p.col < c0 + nc) {
        EXPECT_EQ(want[i].value, p.value)
            << repro(GetParam()) << " (sub-row " << i << ")";
      } else {
        // The window excludes the true minimum: the restricted answer
        // can only be worse (or equal on a tie elsewhere).
        EXPECT_GE(want[i].value, p.value)
            << repro(GetParam()) << " (sub-row " << i << ")";
      }
    }
  }
}

TEST_P(Properties, RowSelectRestriction) {
  // Selecting a subset of rows changes nothing about each selected
  // row's minimum: the view's answer for position i must equal the
  // parent's answer for rows[i], column index included.
  Rng rng(GetParam() + 5000);
  for (int t = 0; t < 5; ++t) {
    const auto [m, n] = random_shape(rng, 48);
    const auto a = monge::random_monge(m, n, rng, 2, 15);
    std::vector<std::size_t> picked;
    for (std::size_t i = 0; i < m; ++i) {
      if (rng.chance(0.4)) picked.push_back(i);
    }
    if (picked.empty()) picked.push_back(m / 2);
    monge::RowSelect<DenseArray<std::int64_t>> sel(a, picked);
    ASSERT_TRUE(monge::is_monge(sel)) << repro(GetParam());
    const auto parent = monge::smawk_row_minima(a);
    const auto got = monge::smawk_row_minima(sel);
    ASSERT_EQ(got.size(), picked.size());
    for (std::size_t i = 0; i < picked.size(); ++i) {
      EXPECT_EQ(got[i], parent[picked[i]])
          << repro(GetParam()) << " (selected row " << picked[i] << ")";
    }
  }
}

TEST_P(Properties, StaircaseFrontierMonotonicity) {
  // Two identities for staircase restriction: a full frontier is the
  // dense problem in disguise, and lowering the frontier (shrinking each
  // row's feasible prefix) can only raise -- never lower -- each row's
  // minimum.  Rows whose frontier reaches 0 report {inf, kNoCol}.
  Rng rng(GetParam() + 6000);
  for (int t = 0; t < 5; ++t) {
    const auto [m, n] = random_shape(rng, 40);
    const auto a = monge::random_monge(m, n, rng, 2, 15);

    StaircaseArray<DenseArray<std::int64_t>> full(
        a, std::vector<std::size_t>(m, n));
    EXPECT_EQ(monge::staircase_row_minima_seq(full),
              monge::smawk_row_minima(a))
        << repro(GetParam()) << " (full frontier, m=" << m << " n=" << n
        << ")";

    const auto inst = monge::random_staircase_monge(m, n, rng);
    StaircaseArray<DenseArray<std::int64_t>> s(inst.base, inst.frontier);
    const auto base_mins = monge::staircase_row_minima_seq(
        StaircaseArray<DenseArray<std::int64_t>>(
            inst.base, std::vector<std::size_t>(m, n)));
    const auto want = monge::row_minima_brute(s);
    const auto got = monge::staircase_row_minima_seq(s);
    Machine mach(Model::CRCW_COMMON);
    const auto par_got = par::staircase_row_minima(mach, s);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(got[i], want[i]) << repro(GetParam()) << " (row " << i << ")";
      EXPECT_EQ(par_got[i], want[i])
          << repro(GetParam()) << " (row " << i << ")";
      if (got[i].col == kNoCol) {
        EXPECT_EQ(inst.frontier[i], 0u)
            << repro(GetParam()) << " (row " << i << ")";
      } else {
        EXPECT_LT(got[i].col, inst.frontier[i])
            << repro(GetParam()) << " (row " << i << ")";
        EXPECT_GE(got[i].value, base_mins[i].value)
            << repro(GetParam()) << " (row " << i << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Properties,
                         ::testing::ValuesIn(property_seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pmonge
