// The network transport suite (docs/networking.md): framing across
// arbitrary TCP chunking, the TCP server's bit-identity with stdin mode
// (replaying the golden transcripts over a real socket), concurrent
// clients, the per-connection backpressure valves (a slow reader must
// never grow server memory without bound), graceful drain under load,
// connection-limit and idle-timeout policy, and a chaos leg with the
// rpc.conn_drop / rpc.read_stall fault sites armed.
//
// Everything binds 127.0.0.1:0 (ephemeral) so suites can run in
// parallel.  The golden replay is the bit-identity anchor: the same
// transcripts test_golden.cpp pins against the in-process Service are
// replayed here through pmonge-rpc's framing and epoll loop, byte for
// byte.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "obs/prometheus.hpp"
#include "rpc/client.hpp"
#include "rpc/framing.hpp"
#include "rpc/server.hpp"
#include "serve/service.hpp"

namespace pmonge {
namespace {

using namespace std::chrono_literals;

constexpr const char* kPing = R"({"op":"ping","id":1})";
constexpr const char* kPong = R"({"id":1,"ok":true,"result":{"pong":true}})";

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(Framing, SplitIntoSingleBytes) {
  rpc::LineFramer f(64);
  const std::string stream = "abc\ndef\r\n\nghi\n";
  std::vector<std::string> lines;
  std::string out;
  for (const char c : stream) {
    f.feed(&c, 1);
    while (f.next(out) == rpc::LineFramer::Result::Line) lines.push_back(out);
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"abc", "def", "", "ghi"}));
  EXPECT_EQ(f.buffered(), 0u);
}

TEST(Framing, CoalescedLinesInOneFeed) {
  rpc::LineFramer f(64);
  const std::string stream = "one\ntwo\nthree\npartial";
  f.feed(stream.data(), stream.size());
  std::string out;
  std::vector<std::string> lines;
  while (f.next(out) == rpc::LineFramer::Result::Line) lines.push_back(out);
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_EQ(f.buffered(), std::strlen("partial"));
  f.feed("\n", 1);
  ASSERT_EQ(f.next(out), rpc::LineFramer::Result::Line);
  EXPECT_EQ(out, "partial");
}

TEST(Framing, OversizedLineReportedOnceAndResyncs) {
  rpc::LineFramer f(8);
  // A 32-byte line fed in chunks: reported Oversized exactly once, its
  // bytes never buffered past the cap, and the next line frames fine.
  const std::string big(32, 'x');
  std::string out;
  std::size_t oversized = 0;
  for (std::size_t i = 0; i < big.size(); i += 4) {
    f.feed(big.data() + i, 4);
    rpc::LineFramer::Result r;
    while ((r = f.next(out)) != rpc::LineFramer::Result::NeedMore) {
      ASSERT_EQ(r, rpc::LineFramer::Result::Oversized);
      ++oversized;
    }
    EXPECT_LE(f.buffered(), 8u + 4u);
  }
  EXPECT_EQ(oversized, 1u);
  const std::string rest = "\nok\n";
  f.feed(rest.data(), rest.size());
  ASSERT_EQ(f.next(out), rpc::LineFramer::Result::Line);
  EXPECT_EQ(out, "ok");
}

TEST(Framing, OversizedCompletedLineInOneFeed) {
  rpc::LineFramer f(8);
  const std::string stream = std::string(20, 'y') + "\nafter\n";
  f.feed(stream.data(), stream.size());
  std::string out;
  ASSERT_EQ(f.next(out), rpc::LineFramer::Result::Oversized);
  ASSERT_EQ(f.next(out), rpc::LineFramer::Result::Line);
  EXPECT_EQ(out, "after");
}

// ---------------------------------------------------------------------------
// Server harness
// ---------------------------------------------------------------------------

/// Service + server on an ephemeral loopback port, loop on its own
/// thread, graceful stop on destruction.
struct TestServer {
  serve::Service service;
  rpc::Server server;
  std::thread loop;

  explicit TestServer(serve::ServiceOptions sopts = {},
                      rpc::ServerOptions ropts = {})
      : service(sopts), server(service, loopback(std::move(ropts))) {
    server.listen();
    loop = std::thread([this] { server.run(); });
  }
  ~TestServer() {
    server.request_stop();
    if (loop.joinable()) loop.join();
  }

  static rpc::ServerOptions loopback(rpc::ServerOptions o) {
    o.host = "127.0.0.1";
    o.port = 0;
    return o;
  }

  rpc::Client connect() { return rpc::Client("127.0.0.1", server.port()); }
};

TEST(RpcServer, PingRoundTrip) {
  TestServer ts;
  rpc::Client c = ts.connect();
  EXPECT_EQ(c.request(kPing), kPong);
}

TEST(RpcServer, SplitAndCoalescedTcpWrites) {
  TestServer ts;
  rpc::Client c = ts.connect();
  // One request delivered a byte at a time...
  const std::string one = std::string(kPing) + "\n";
  for (const char ch : one) {
    ASSERT_EQ(::send(c.fd(), &ch, 1, MSG_NOSIGNAL), 1);
  }
  EXPECT_EQ(c.recv_line(), kPong);
  // ...and three requests coalesced into a single write.
  const std::string burst =
      R"({"op":"ping","id":2})" "\n"
      R"({"op":"string_edit","id":3,"x":"kitten","y":"sitting"})" "\n"
      R"({"op":"ping","id":4})" "\n";
  ASSERT_EQ(::send(c.fd(), burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));
  EXPECT_EQ(c.recv_line(), R"({"id":2,"ok":true,"result":{"pong":true}})");
  EXPECT_EQ(c.recv_line(), R"({"id":3,"ok":true,"result":{"cost":3}})");
  EXPECT_EQ(c.recv_line(), R"({"id":4,"ok":true,"result":{"pong":true}})");
}

TEST(RpcServer, OversizedLineAnsweredAndConnectionSurvives) {
  rpc::ServerOptions ropts;
  ropts.max_line_bytes = 256;
  TestServer ts({}, ropts);
  rpc::Client c = ts.connect();
  const std::string big = "{\"op\":\"ping\",\"pad\":\"" +
                          std::string(1000, 'x') + "\"}";
  c.send_line(big);
  EXPECT_EQ(c.recv_line(),
            R"({"error":"bad_request: line exceeds 256 bytes","ok":false})");
  // The connection resynchronized at the newline and keeps serving.
  EXPECT_EQ(c.request(kPing), kPong);
}

TEST(RpcServer, PipeliningPreservesOrder) {
  TestServer ts;
  rpc::Client c = ts.connect();
  std::vector<std::string> reqs;
  for (int i = 1; i <= 50; ++i) {
    reqs.push_back(R"({"op":"ping","id":)" + std::to_string(i) + "}");
  }
  const std::vector<std::string> resps = c.pipeline(reqs);
  ASSERT_EQ(resps.size(), reqs.size());
  for (int i = 1; i <= 50; ++i) {
    EXPECT_EQ(resps[static_cast<std::size_t>(i - 1)],
              R"({"id":)" + std::to_string(i) +
                  R"(,"ok":true,"result":{"pong":true}})");
  }
}

TEST(RpcServer, ShutdownWriteDrainsThenEof) {
  TestServer ts;
  rpc::Client c = ts.connect();
  for (int i = 1; i <= 10; ++i) {
    c.send_line(R"({"op":"ping","id":)" + std::to_string(i) + "}");
  }
  c.shutdown_write();
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(c.recv_line(), R"({"id":)" + std::to_string(i) +
                                 R"(,"ok":true,"result":{"pong":true}})");
  }
  EXPECT_THROW(c.recv_line(), rpc::RpcError);
}

TEST(RpcServer, MaxConnsRejectsSurplus) {
  rpc::ServerOptions ropts;
  ropts.max_conns = 1;
  TestServer ts({}, ropts);
  rpc::Client first = ts.connect();
  // The request guarantees the first connection is fully accepted before
  // the second arrives.
  EXPECT_EQ(first.request(kPing), kPong);
  rpc::Client second = ts.connect();
  EXPECT_EQ(second.recv_line(),
            R"({"error":"overloaded: connection limit","ok":false})");
  EXPECT_THROW(second.recv_line(), rpc::RpcError);
  // The first connection is unaffected.
  EXPECT_EQ(first.request(kPing), kPong);
  EXPECT_GE(ts.server.stats().rejected_conns.load(), 1u);
}

TEST(RpcServer, IdleConnectionsAreClosed) {
  rpc::ServerOptions ropts;
  ropts.idle_timeout_ms = 100;
  TestServer ts({}, ropts);
  rpc::Client c = ts.connect();
  EXPECT_EQ(c.request(kPing), kPong);
  // No traffic, nothing in flight: the sweep closes us.
  EXPECT_THROW(c.recv_line(), rpc::RpcError);
  // The client can observe EOF a beat before the loop thread bumps the
  // counter; poll rather than racing it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ts.server.stats().idle_closed.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ts.server.stats().idle_closed.load(), 1u);
}

TEST(RpcServer, StatsSectionAndPrometheusExposition) {
  TestServer ts;
  ts.service.set_extra_stats("rpc",
                             [&] { return ts.server.stats_json(); });
  rpc::Client c = ts.connect();
  EXPECT_EQ(c.request(kPing), kPong);
  const std::string resp = c.request(R"({"op":"stats","id":2})");
  const serve::Json j = serve::Json::parse(resp);
  const serve::Json* rpc_sec = j.at("result").find("rpc");
  ASSERT_NE(rpc_sec, nullptr);
  EXPECT_GE(rpc_sec->at("accepted").as_int(), 1);
  EXPECT_GE(rpc_sec->at("lines_in").as_int(), 2);
  const std::string prom = obs::prometheus_text(j.at("result"));
  EXPECT_NE(prom.find("pmonge_rpc_connections_accepted_total"),
            std::string::npos);
  EXPECT_NE(prom.find("pmonge_rpc_lines_in_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden transcripts over TCP: bit-identity with stdin mode
// ---------------------------------------------------------------------------

std::filesystem::path golden_dir() {
  return std::filesystem::path(PMONGE_SOURCE_DIR) / "tests" / "golden";
}

/// Transcripts that exercise only the wire protocol (no !pause -- worker
/// pausing is an in-process test hook the TCP surface does not expose).
std::vector<std::string> replayable_goldens() {
  std::vector<std::string> names;
  for (const auto& e : std::filesystem::directory_iterator(golden_dir())) {
    if (e.path().extension() != ".txt") continue;
    std::ifstream in(e.path());
    std::string line;
    bool replayable = true;
    while (std::getline(in, line)) {
      if (line == "!pause") {
        replayable = false;
        break;
      }
    }
    if (replayable) names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

serve::ServiceOptions transcript_options(const std::filesystem::path& path) {
  serve::ServiceOptions opts;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("!options", 0) != 0) continue;
    std::istringstream is(line.substr(8));
    std::string tok;
    while (is >> tok) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "queue") opts.queue_capacity = std::stoull(val);
      if (key == "batch") opts.batch_max = std::stoull(val);
      if (key == "cache") opts.cache_capacity = std::stoull(val);
      if (key == "shards") opts.cache_shards = std::stoull(val);
      if (key == "deadline") opts.default_deadline_ms = std::stoll(val);
      if (key == "coalesce") opts.coalesce = val == "on";
      if (key == "planner") opts.planner = val == "on";
    }
  }
  return opts;
}

class GoldenOverTcp : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenOverTcp, TranscriptMatchesOverSocket) {
  const std::filesystem::path path = golden_dir() / GetParam();
  TestServer ts(transcript_options(path));
  rpc::Client c = ts.connect();

  std::ifstream in(path);
  ASSERT_TRUE(in) << "cannot open " << path;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line.rfind("!options", 0) == 0) {
      continue;
    }
    if (line.rfind("> ", 0) == 0) {
      c.send_line(line.substr(2));
    } else if (line.rfind("< ", 0) == 0 || line == "<") {
      const std::string want =
          line.size() > 2 ? line.substr(2) : std::string();
      EXPECT_EQ(c.recv_line(), want) << GetParam() << ":" << lineno;
    } else if (line.rfind("~ ", 0) == 0) {
      const std::string got = c.recv_line();
      EXPECT_TRUE(std::regex_match(got, std::regex(line.substr(2))))
          << GetParam() << ":" << lineno << "\n  got: " << got;
    } else {
      FAIL() << GetParam() << ":" << lineno
             << ": directive the TCP replay cannot drive: " << line;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Transcripts, GoldenOverTcp,
                         ::testing::ValuesIn(replayable_goldens()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Concurrency: N clients, byte-identical responses
// ---------------------------------------------------------------------------

TEST(RpcServer, ConcurrentClientsBitIdentical) {
  // 32 clients x 48 pipelined queries can all be in flight at once;
  // size the admission queue so none are (legitimately) rejected
  // `overloaded` -- this test pins answer bytes, not admission policy.
  serve::ServiceOptions sopts;
  sopts.queue_capacity = 8192;
  TestServer ts(sopts);
  // Shared operands registered once, before any concurrent client runs,
  // so every client sees the same array ids.
  {
    rpc::Client c = ts.connect();
    EXPECT_EQ(
        c.request(
            R"({"op":"register_random","id":1,"rows":64,"cols":48,"seed":7})"),
        R"({"id":1,"ok":true,"result":{"array":0}})");
    EXPECT_EQ(c.request(R"({"op":"register_random","id":2,"rows":24,)"
                        R"("cols":24,"seed":11,"kind":"staircase"})"),
              R"({"id":2,"ok":true,"result":{"array":1}})");
  }
  std::vector<std::string> reqs;
  for (int i = 0; i < 16; ++i) {
    reqs.push_back(R"({"op":"rowmin","id":)" + std::to_string(100 + i) +
                   R"(,"array":0,"row":)" + std::to_string(i % 64) + "}");
    reqs.push_back(R"({"op":"rowmax","id":)" + std::to_string(200 + i) +
                   R"(,"array":0,"row":)" + std::to_string(i % 64) + "}");
    reqs.push_back(R"({"op":"staircase_rowmin","id":)" +
                   std::to_string(300 + i) + R"(,"array":1,"row":)" +
                   std::to_string(i % 24) + "}");
  }
  // One sequential run pins the expected bytes; by the serve determinism
  // contract they cannot depend on concurrency, batching or cache state.
  std::vector<std::string> expected;
  {
    rpc::Client c = ts.connect();
    expected = c.pipeline(reqs);
  }
  constexpr int kClients = 32;
  // Connect (and ping, which forces the accept) every client BEFORE any
  // pipeline runs, so all 32 connections provably coexist -- the
  // high-water assertion below must not depend on thread start timing.
  std::vector<rpc::Client> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back("127.0.0.1", ts.server.port());
    EXPECT_EQ(clients.back().request(kPing), kPong);
  }
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      got[static_cast<std::size_t>(t)] =
          clients[static_cast<std::size_t>(t)].pipeline(reqs);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kClients; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)], expected)
        << "client " << t << " diverged from the sequential bytes";
  }
  EXPECT_GE(ts.server.stats().conn_high_water.load(), 32u);
}

// ---------------------------------------------------------------------------
// Backpressure: a slow reader never grows server memory without bound
// ---------------------------------------------------------------------------

TEST(RpcServer, SlowReaderIsPausedWithBoundedMemoryThenRecovers) {
  rpc::ServerOptions ropts;
  ropts.limits.max_inflight = 4;
  ropts.limits.overload_inflight = 16;
  TestServer ts({}, ropts);
  rpc::Client c = ts.connect();
  ASSERT_EQ(
      c.request(
          R"({"op":"register_random","id":1,"rows":16,"cols":16,"seed":3})"),
      R"({"id":1,"ok":true,"result":{"array":0}})");

  // Hold the worker so query responses cannot complete, then pipeline
  // 100 queries without reading anything: the inflight valve MUST stop
  // the server from framing them all -- pending grows until max_inflight
  // pauses reads (anything framed past overload_inflight is rejected
  // `overloaded` instead of buffered).  Either way, server-side memory
  // for this connection stays bounded by the valves, not by how much a
  // misbehaving client sends.
  ts.service.pause();
  constexpr int kRequests = 100;
  for (int i = 1; i <= kRequests; ++i) {
    c.send_line(R"({"op":"rowmin","id":)" + std::to_string(i) +
                R"(,"array":0,"row":)" + std::to_string(i % 16) + "}");
  }
  // Wait until the valves engage: reads paused with the worker held.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (ts.server.stats().read_pauses.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GE(ts.server.stats().read_pauses.load(), 1u)
      << "inflight valve never paused reads";
  // The server cannot have buffered anywhere near the whole burst:
  // framed lines are capped by the overload valve plus rejections.
  EXPECT_LT(ts.server.stats().lines_in.load(), kRequests + 1u);

  // Release the worker and drain like a healthy client: every one of
  // the 100 requests gets exactly one response (ok or `overloaded`), in
  // order, and the connection keeps working afterwards.
  ts.service.resume();
  int ok = 0, overloaded = 0;
  for (int i = 1; i <= kRequests; ++i) {
    const std::string resp = c.recv_line();
    if (resp.find("\"ok\":true") != std::string::npos) {
      ++ok;
    } else {
      EXPECT_NE(resp.find("overloaded"), std::string::npos) << resp;
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kRequests);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(c.request(kPing), kPong);
}

TEST(RpcServer, InflightValvePausesReadsButAnswersEverything) {
  // Query ops (not control ops) so responses need a worker round trip:
  // a pipelined burst must outrun the worker and trip the inflight
  // valve at least once, yet every request still gets its answer.
  rpc::ServerOptions ropts;
  ropts.limits.max_inflight = 2;
  ropts.limits.overload_inflight = 512;
  TestServer ts({}, ropts);
  rpc::Client c = ts.connect();
  ASSERT_EQ(
      c.request(
          R"({"op":"register_random","id":1,"rows":16,"cols":16,"seed":3})"),
      R"({"id":1,"ok":true,"result":{"array":0}})");
  std::vector<std::string> reqs;
  for (int i = 1; i <= 200; ++i) {
    reqs.push_back(R"({"op":"rowmin","id":)" + std::to_string(i) +
                   R"(,"array":0,"row":)" + std::to_string(i % 16) + "}");
  }
  const std::vector<std::string> resps = c.pipeline(reqs);
  ASSERT_EQ(resps.size(), reqs.size());
  for (std::size_t i = 0; i < resps.size(); ++i) {
    EXPECT_NE(resps[i].find("\"ok\":true"), std::string::npos) << resps[i];
  }
  EXPECT_GE(ts.server.stats().read_pauses.load(), 1u);
}

// ---------------------------------------------------------------------------
// Graceful drain under load
// ---------------------------------------------------------------------------

TEST(RpcServer, GracefulDrainFlushesInFlight) {
  auto ts = std::make_unique<TestServer>();
  rpc::Client c = ts->connect();
  for (int i = 1; i <= 100; ++i) {
    c.send_line(R"({"op":"ping","id":)" + std::to_string(i) + "}");
  }
  ts->server.request_stop();
  // Every response the drain delivers must be the next expected one --
  // an in-order prefix of the submitted requests, then EOF.
  int next_id = 1;
  try {
    while (true) {
      const std::string resp = c.recv_line();
      EXPECT_EQ(resp, R"({"id":)" + std::to_string(next_id) +
                          R"(,"ok":true,"result":{"pong":true}})");
      ++next_id;
    }
  } catch (const rpc::RpcError&) {
    // EOF: the drain finished.
  }
  EXPECT_GE(next_id, 1);
  ts.reset();  // run() must have returned; the join cannot hang
}

// ---------------------------------------------------------------------------
// Chaos: conn_drop / read_stall armed
// ---------------------------------------------------------------------------

struct FaultGuard {
  ~FaultGuard() { fault::disarm(); }
};

TEST(RpcChaos, SurvivesConnDropAndReadStall) {
  FaultGuard guard;
  TestServer ts;
  {
    rpc::Client c = ts.connect();
    ASSERT_EQ(
        c.request(
            R"({"op":"register_random","id":1,"rows":32,"cols":32,"seed":5})"),
        R"({"id":1,"ok":true,"result":{"array":0}})");
  }
  fault::arm(/*seed=*/7, /*rate_bp=*/300,
             (1u << static_cast<std::uint32_t>(fault::Site::RpcConnDrop)) |
                 (1u << static_cast<std::uint32_t>(fault::Site::RpcReadStall)));

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 150;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rpc::Client c("127.0.0.1", ts.server.port());
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string req =
            R"({"op":"rowmin","id":)" + std::to_string(i) +
            R"(,"array":0,"row":)" + std::to_string((t * 7 + i) % 32) + "}";
        try {
          const std::string resp = c.request(req);
          EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
          ok.fetch_add(1);
        } catch (const rpc::RpcError&) {
          // Injected drop: the answer died with the connection.
          // Reconnect and continue -- the server must still be there.
          reconnects.fetch_add(1);
          c.connect("127.0.0.1", ts.server.port());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  fault::disarm();

  // At 3% drop odds over 1200 request/response cycles, drops all landing
  // elsewhere would be astronomically unlucky -- but the gate is only
  // that progress continued and the server survived.
  EXPECT_GT(ok.load(), 0u);
  rpc::Client c = ts.connect();
  EXPECT_EQ(c.request(kPing), kPong);
  EXPECT_EQ(ts.server.stats().dropped_conns.load(),
            fault::injected(fault::Site::RpcConnDrop));
}

}  // namespace
}  // namespace pmonge
