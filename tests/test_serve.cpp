// Serve-layer tests: canonical JSON, the sharded LRU result cache, the
// bounded admission queue, and the Service end to end -- correctness
// against sequential oracles, the bit-identical determinism guarantee
// (thread count x coalescing x cache state), backpressure and deadlines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "apps/string_edit.hpp"
#include "exec/thread_pool.hpp"
#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "plan/cost_model.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "support/rng.hpp"

namespace pmonge::serve {
namespace {

struct ThreadGuard {
  std::size_t saved = exec::num_threads();
  ~ThreadGuard() { exec::set_num_threads(saved); }
};

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"b":[1,2.5,"x",null,true],"a":{"nested":-7},"s":"é\n\"q\""})";
  const Json j = Json::parse(text);
  // Canonical: keys sorted, no whitespace, stable under re-parse.
  const std::string d1 = j.dump();
  const std::string d2 = Json::parse(d1).dump();
  EXPECT_EQ(d1, d2);
  EXPECT_LT(d1.find("\"a\""), d1.find("\"b\""));
  EXPECT_EQ(j.at("a").at("nested").as_int(), -7);
  EXPECT_EQ(j.at("b").arr().size(), 5u);
  EXPECT_DOUBLE_EQ(j.at("b").arr()[1].as_double(), 2.5);
}

TEST(Json, RejectsGarbage) {
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse(""), JsonError);
}

TEST(Json, IntegerPrecisionPreserved) {
  const std::int64_t big = 9007199254740993LL;  // not double-representable
  Json::Obj o;
  o["v"] = big;
  const Json j = Json::parse(Json(std::move(o)).dump());
  EXPECT_EQ(j.at("v").as_int(), big);
}

// ---------------------------------------------------------------------------
// ShardedLruCache
// ---------------------------------------------------------------------------

TEST(Cache, HitMissCountersAndEviction) {
  ShardedLruCache cache(4, 1);  // single shard: exact LRU semantics
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("c", "3");
  cache.put("d", "4");
  EXPECT_EQ(cache.get("a"), "1");  // refreshes a's recency
  cache.put("e", "5");             // evicts b, the least recent
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.get("a"), "1");
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 5u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 4u);
}

TEST(Cache, PutRefreshesExistingKey) {
  ShardedLruCache cache(2, 1);
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("a", "1'");  // refresh, not a new entry
  cache.put("c", "3");   // evicts b
  EXPECT_EQ(cache.get("a"), "1'");
  EXPECT_FALSE(cache.get("b").has_value());
}

TEST(Cache, TagInvalidationDropsExactlyTaggedEntries) {
  ShardedLruCache cache(16, 2);
  cache.put_tagged("q0", "r0", {7});
  cache.put_tagged("q1", "r1", {7, 9});
  cache.put_tagged("q2", "r2", {9});
  cache.put("q3", "r3");  // untagged: immune to invalidation
  EXPECT_EQ(cache.invalidate_tag(7), 2u);  // q0 and q1
  EXPECT_FALSE(cache.get("q0").has_value());
  EXPECT_FALSE(cache.get("q1").has_value());
  EXPECT_EQ(cache.get("q2"), "r2");
  EXPECT_EQ(cache.get("q3"), "r3");
  EXPECT_EQ(cache.invalidate_tag(7), 0u);  // idempotent
  EXPECT_EQ(cache.invalidate_tag(9), 1u);  // q2 only
  EXPECT_EQ(cache.stats().invalidations, 3u);
}

TEST(Cache, ZeroCapacityDisables) {
  ShardedLruCache cache(0, 8);
  EXPECT_FALSE(cache.enabled());
  cache.put("a", "1");
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(Cache, ConcurrentHammerIsConsistent) {
  ThreadGuard tg;
  exec::set_num_threads(8);
  ShardedLruCache cache(64, 8);
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> ts;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&cache, &bad, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 96);
        const std::string val = "v" + std::to_string((t * 7 + i) % 96);
        if (auto got = cache.get(key)) {
          if (*got != val) bad.fetch_add(1);  // value must match its key
        } else {
          cache.put(key, val);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bad.load(), 0);
  const CacheStats s = cache.stats();
  EXPECT_LE(s.entries, 64u + 8u);  // per-shard rounding slack
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads * kOps));
}

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

TEST(Admission, OverflowRejectsExplicitly) {
  AdmissionQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), AdmitResult::Admitted);
  EXPECT_EQ(q.try_push(2), AdmitResult::Admitted);
  EXPECT_EQ(q.try_push(3), AdmitResult::Overloaded);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.admitted(), 2u);
  EXPECT_EQ(q.overloaded(), 1u);
  auto batch = q.try_pop_batch(10);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].item, 1);  // FIFO
  EXPECT_EQ(batch[1].item, 2);
  EXPECT_EQ(q.try_push(4), AdmitResult::Admitted);  // space freed
}

TEST(Admission, ExpiredItemsPopFlaggedNotDropped) {
  AdmissionQueue<int> q(4);
  q.try_push(1, ServeClock::now() - std::chrono::milliseconds(1));
  q.try_push(2);  // no deadline
  auto batch = q.try_pop_batch(10);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].expired);
  EXPECT_FALSE(batch[1].expired);
}

TEST(Admission, StopDrainsThenReturnsEmpty) {
  AdmissionQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.stop();
  EXPECT_EQ(q.pop_batch(1).size(), 1u);
  EXPECT_EQ(q.pop_batch(10).size(), 1u);
  EXPECT_TRUE(q.pop_batch(10).empty());  // drained; no block
}

TEST(Admission, PauseHoldsPoppersNotProducers) {
  AdmissionQueue<int> q(8);
  q.pause(true);
  q.try_push(1);
  q.try_push(2);
  EXPECT_TRUE(q.try_pop_batch(10).empty());  // held
  std::thread popper([&q] {
    auto batch = q.pop_batch(10);  // blocks until resume
    EXPECT_EQ(batch.size(), 2u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.pause(false);
  popper.join();
  q.stop();
}

TEST(Admission, ConcurrentProducersNeverLoseItems) {
  ThreadGuard tg;
  exec::set_num_threads(8);
  AdmissionQueue<int> q(1u << 16);
  constexpr int kThreads = 8;
  constexpr int kItems = 1000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&q] {
      for (int i = 0; i < kItems; ++i) ASSERT_EQ(q.try_push(i),
                                                 AdmitResult::Admitted);
    });
  }
  std::atomic<int> popped{0};
  std::thread consumer([&q, &popped] {
    while (true) {
      auto batch = q.pop_batch(64);
      if (batch.empty()) return;
      popped.fetch_add(static_cast<int>(batch.size()));
    }
  });
  for (auto& th : ts) th.join();
  q.stop();
  consumer.join();
  EXPECT_EQ(popped.load(), kThreads * kItems);
}

// ---------------------------------------------------------------------------
// Service end to end
// ---------------------------------------------------------------------------

std::string reg_random(Service& svc, std::size_t rows, std::size_t cols,
                       std::uint64_t seed, const char* kind = "monge") {
  Json::Obj o;
  o["op"] = "register_random";
  o["rows"] = rows;
  o["cols"] = cols;
  o["seed"] = seed;
  o["kind"] = kind;
  return svc.request(Json(std::move(o)).dump());
}

std::int64_t result_int(const std::string& resp, const char* key) {
  const Json j = Json::parse(resp);
  EXPECT_TRUE(j.at("ok").as_bool()) << resp;
  return j.at("result").at(key).as_int();
}

TEST(Service, RowMinimaMatchBruteForce) {
  Service svc;
  ASSERT_EQ(result_int(reg_random(svc, 24, 31, 5), "array"), 0);
  Rng rng(5);
  const auto a = monge::random_monge(24, 31, rng);  // same seed => same array
  const auto brute = monge::row_minima_brute(a);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    Json::Obj o;
    o["op"] = "rowmin";
    o["array"] = 0;
    o["row"] = i;
    const std::string resp = svc.request(Json(std::move(o)).dump());
    const auto expect = brute[i];
    EXPECT_EQ(result_int(resp, "value"), expect.value) << "row " << i;
    EXPECT_EQ(result_int(resp, "col"),
              static_cast<std::int64_t>(expect.col))
        << "row " << i;
  }
}

TEST(Service, StringEditMatchesSequential) {
  Service svc;
  Json::Obj o;
  o["op"] = "string_edit";
  o["x"] = "kitten";
  o["y"] = "sitting";
  const std::string resp = svc.request(Json(std::move(o)).dump());
  const auto expect =
      apps::edit_distance_seq("kitten", "sitting", apps::EditCosts{});
  EXPECT_EQ(result_int(resp, "cost"), expect.cost);
}

TEST(Service, ErrorsAreExplicit) {
  Service svc;
  EXPECT_NE(svc.request("this is not json").find("parse_error"),
            std::string::npos);
  EXPECT_NE(svc.request(R"({"op":"rowmin","array":77,"row":0})")
                .find("unknown_array"),
            std::string::npos);
  reg_random(svc, 8, 8, 1);
  EXPECT_NE(
      svc.request(R"({"op":"rowmin","array":0,"row":99})").find("out of range"),
      std::string::npos);
  EXPECT_NE(svc.request(R"({"op":"bogus"})").find("unknown_op"),
            std::string::npos);
}

TEST(Service, UnregisterForgets) {
  Service svc;
  reg_random(svc, 8, 8, 1);
  EXPECT_NE(svc.request(R"({"op":"rowmin","array":0,"row":0})").find("ok"),
            std::string::npos);
  const Json r =
      Json::parse(svc.request(R"({"op":"unregister","array":0})"));
  EXPECT_TRUE(r.at("result").at("removed").as_bool());
  EXPECT_GE(r.at("result").at("cache_invalidated").as_int(), 1);
  // Regression: the cached signature from before the unregister must NOT
  // resurrect the array -- unregister invalidates every cache entry tagged
  // with the array id, so the exact same request misses and fails fresh.
  EXPECT_NE(svc.request(R"({"op":"rowmin","array":0,"row":0})")
                .find("unknown_array"),
            std::string::npos);
  EXPECT_NE(svc.request(R"({"op":"rowmin","array":0,"row":1})")
                .find("unknown_array"),
            std::string::npos);
}

TEST(Service, UnregisterInvalidatesTubeOperandEntries) {
  Service svc;
  // Compatible pair: d is 8x6, e is 6x8 (tube needs d.cols == e.rows).
  ASSERT_EQ(result_int(reg_random(svc, 8, 6, 21), "array"), 0);
  ASSERT_EQ(result_int(reg_random(svc, 6, 8, 22), "array"), 1);
  const std::string q = R"({"op":"tubemax","d":0,"e":1,"i":2,"k":3})";
  EXPECT_NE(svc.request(q).find("\"ok\":true"), std::string::npos);
  // Unregistering EITHER operand must kill the cached composite answer.
  const Json r = Json::parse(svc.request(R"({"op":"unregister","array":1})"));
  EXPECT_TRUE(r.at("result").at("removed").as_bool());
  EXPECT_GE(r.at("result").at("cache_invalidated").as_int(), 1);
  EXPECT_NE(svc.request(q).find("unknown_array"), std::string::npos);
}

/// Run a mixed workload and return all response lines, in request order.
std::vector<std::string> run_workload(Service& svc) {
  std::vector<std::string> lines;
  lines.push_back(
      R"({"op":"register_random","rows":40,"cols":33,"seed":11})");
  lines.push_back(
      R"({"op":"register_random","rows":20,"cols":20,"seed":12,"kind":"inverse_monge"})");
  lines.push_back(
      R"({"op":"register_random","rows":24,"cols":18,"seed":13,"kind":"staircase"})");
  lines.push_back(
      R"({"op":"register_random","rows":16,"cols":12,"seed":14})");
  lines.push_back(
      R"({"op":"register_random","rows":12,"cols":10,"seed":15})");
  std::vector<std::string> out;
  for (const auto& l : lines) out.push_back(svc.request(l));
  // Array ids: 0 monge 40x33, 1 inverse 20x20, 2 staircase 24x18,
  // 3 monge 16x12, 4 monge 12x10.  (3,4) do not compose; use (3,3)? no --
  // tube needs d.cols == e.rows, so register a compatible pair.
  out.push_back(svc.request(
      R"({"op":"register_random","rows":12,"cols":9,"seed":16})"));  // id 5
  std::vector<std::string> queries;
  for (int row = 0; row < 12; ++row) {
    queries.push_back(R"({"op":"rowmin","array":0,"row":)" +
                      std::to_string(row) + "}");
    queries.push_back(R"({"op":"rowmax","array":1,"row":)" +
                      std::to_string(row % 20) + "}");
    queries.push_back(R"({"op":"staircase_rowmin","array":2,"row":)" +
                      std::to_string(row % 24) + "}");
    queries.push_back(R"({"op":"tubemax","d":3,"e":5,"i":)" +
                      std::to_string(row % 16) + R"(,"k":)" +
                      std::to_string(row % 9) + "}");
  }
  queries.push_back(R"({"op":"string_edit","x":"abcdef","y":"azced"})");
  queries.push_back(
      R"({"op":"largest_rect","points":[[0,0],[9,9],[2,7],[6,3],[4,4]]})");
  svc.pause();  // accumulate so coalescing actually sees a batch
  std::vector<std::future<std::string>> futs;
  for (const auto& q : queries) futs.push_back(svc.submit(q));
  svc.resume();
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

TEST(Service, ResponsesBitIdenticalAcrossThreadsBatchingAndCache) {
  ThreadGuard tg;
  std::vector<std::vector<std::string>> runs;
  // Profile 0: builtin.  Profile 1: parallel dispatch priced absurdly high,
  // so the planner routes everything to brute / sequential.  Profile 2:
  // parallel priced near free, so the planner always picks the kernel.
  // Responses must not depend on which variant actually ran.
  plan::CostProfile profiles[3] = {plan::builtin_profile(),
                                   plan::builtin_profile(),
                                   plan::builtin_profile()};
  profiles[1].id = "test-all-serial";
  profiles[1].par_dispatch_ns = 1e12;
  profiles[2].id = "test-all-parallel";
  profiles[2].par_dispatch_ns = 0;
  profiles[2].par_ns_per_work = 1e-6;
  profiles[2].par_depth_ns = 0;
  struct Config {
    std::size_t threads;
    bool coalesce;
    std::size_t cache;
    bool planner;
    int profile;
  };
  const Config configs[] = {
      {1, true, 4096, true, 0},  {8, true, 4096, true, 0},
      {8, false, 4096, true, 0}, {8, true, 0, true, 0},
      {8, true, 4096, false, 0}, {8, true, 4096, true, 1},
      {8, true, 4096, true, 2},  {8, false, 0, true, 1},
  };
  for (const Config& c : configs) {
    exec::set_num_threads(c.threads);
    ServiceOptions opts;
    opts.coalesce = c.coalesce;
    opts.cache_capacity = c.cache;
    opts.planner = c.planner;
    opts.profile = profiles[c.profile];
    Service svc(opts);
    runs.push_back(run_workload(svc));
    // Warm second pass inside the same service: the result cache and the
    // plan cache are both hot now, and the bytes must still match.
    Service svc2(opts);
    auto first = run_workload(svc2);
    EXPECT_EQ(first, runs.back());
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], runs[0]) << "config " << i << " diverged";
  }
}

TEST(Service, CacheHitsAreServedAndCounted) {
  Service svc;
  reg_random(svc, 16, 16, 3);
  const std::string q = R"({"op":"rowmin","array":0,"row":4})";
  const std::string r1 = svc.request(q);
  const std::string r2 = svc.request(q);
  EXPECT_EQ(r1, r2);
  const CacheStats s = svc.cache_stats();
  EXPECT_GE(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  // Different id / deadline must not defeat the cache (signature strips
  // them) and must not leak into the response of the other request.
  const std::string r3 =
      svc.request(R"({"op":"rowmin","array":0,"id":9,"row":4})");
  EXPECT_GE(svc.cache_stats().hits, 2u);
  EXPECT_NE(r3.find("\"id\":9"), std::string::npos);
}

TEST(Service, OverloadRejectsInsteadOfHangingOrDropping) {
  ServiceOptions opts;
  opts.queue_capacity = 4;
  opts.cache_capacity = 0;  // every request must reach the queue
  Service svc(opts);
  reg_random(svc, 16, 16, 3);
  svc.pause();  // hold the worker so the queue genuinely fills
  std::vector<std::future<std::string>> futs;
  constexpr std::size_t kSubmitted = 32;
  for (std::size_t i = 0; i < kSubmitted; ++i) {
    futs.push_back(svc.submit(R"({"op":"rowmin","array":0,"id":)" +
                              std::to_string(i) + R"(,"row":)" +
                              std::to_string(i % 16) + "}"));
  }
  svc.resume();
  std::size_t ok = 0, overloaded = 0;
  for (auto& f : futs) {
    const std::string resp = f.get();  // every future resolves: no drops
    if (resp.find("\"ok\":true") != std::string::npos) {
      ++ok;
    } else {
      EXPECT_NE(resp.find("overloaded"), std::string::npos) << resp;
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kSubmitted);
  EXPECT_GE(ok, 4u);          // everything admitted was answered
  EXPECT_GE(overloaded, 1u);  // and the excess was rejected, not dropped
}

TEST(Service, ExpiredDeadlinesAnswerDeadlineExpired) {
  ServiceOptions opts;
  opts.cache_capacity = 0;
  Service svc(opts);
  reg_random(svc, 8, 8, 1);
  svc.pause();
  // The deadline is generous versus the predicted cost (so admission lets
  // it through) but expires while the worker is paused.
  auto fut = svc.submit(
      R"({"op":"rowmin","array":0,"row":0,"deadline_ms":20})");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  svc.resume();
  const std::string resp = fut.get();
  EXPECT_NE(resp.find("deadline_expired"), std::string::npos) << resp;
}

TEST(Service, UnmeetableDeadlinesRejectedAtAdmission) {
  ServiceOptions opts;
  opts.cache_capacity = 0;
  Service svc(opts);
  reg_random(svc, 64, 64, 1);
  svc.pause();  // the worker never runs: rejection must happen before it
  auto fut = svc.submit(
      R"({"op":"rowmin","array":0,"row":0,"deadline_ms":0})");
  const std::string resp = fut.get();  // resolves while still paused
  EXPECT_NE(resp.find("deadline_unmeetable"), std::string::npos) << resp;
  const Json stats =
      Json::parse(svc.request(R"({"op":"stats"})")).at("result");
  const Json& rowmin = stats.at("endpoints").at("rowmin");
  EXPECT_EQ(rowmin.at("unmeetable").as_int(), 1);
  EXPECT_EQ(rowmin.at("requests").as_int(), 0);  // never entered the engine
  svc.resume();
}

TEST(Service, ConcurrentSubmittersGetConsistentAnswers) {
  ThreadGuard tg;
  exec::set_num_threads(8);
  Service svc;
  reg_random(svc, 32, 32, 9);
  Rng rng(9);
  const auto a = monge::random_monge(32, 32, rng);
  const auto expect = monge::row_minima_brute(a);
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&svc, &expect, &bad, t] {
      for (int i = 0; i < 64; ++i) {
        const std::size_t row = static_cast<std::size_t>((t * 13 + i) % 32);
        const std::string resp = svc.request(
            R"({"op":"rowmin","array":0,"row":)" + std::to_string(row) + "}");
        const Json j = Json::parse(resp);
        if (!j.at("ok").as_bool() ||
            j.at("result").at("value").as_int() != expect[row].value ||
            j.at("result").at("col").as_int() !=
                static_cast<std::int64_t>(expect[row].col)) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(Service, StatsReportsCountersAndQueue) {
  // Planner off: the fixed parallel dispatch always charges PRAM work,
  // which is what the `charged` section of stats reports.
  ServiceOptions opts;
  opts.planner = false;
  Service svc(opts);
  reg_random(svc, 8, 8, 1);
  svc.request(R"({"op":"rowmin","array":0,"row":0})");
  svc.request(R"({"op":"rowmin","array":0,"row":0})");
  const Json stats =
      Json::parse(svc.request(R"({"op":"stats"})")).at("result");
  const Json& rowmin = stats.at("endpoints").at("rowmin");
  EXPECT_EQ(rowmin.at("requests").as_int(), 2);
  EXPECT_EQ(rowmin.at("ok").as_int(), 2);
  EXPECT_GE(rowmin.at("cache_hits").as_int(), 1);
  EXPECT_EQ(stats.at("registry").at("arrays").as_int(), 1);
  EXPECT_EQ(stats.at("queue").at("capacity").as_int(), 1024);
  EXPECT_GE(stats.at("charged").at("work").as_int(), 1);
}

TEST(Service, RegisterValidateRejectsNonMonge) {
  Service svc;
  // 2x2 anti-Monge array: a[0][0]+a[1][1] > a[0][1]+a[1][0].
  const std::string resp = svc.request(
      R"({"op":"register_dense","rows":2,"cols":2,"data":[5,0,0,0],"validate":true})");
  EXPECT_NE(resp.find("not_monge"), std::string::npos) << resp;
  const std::string ok = svc.request(
      R"({"op":"register_dense","rows":2,"cols":2,"data":[0,0,0,0],"validate":true})");
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
}

}  // namespace
}  // namespace pmonge::serve
