// SMAWK tests: all four problem variants against brute force on random
// Monge / inverse-Monge instances (including heavy-tie integer arrays and
// extreme aspect ratios), the staircase sequential solver, and probe-count
// linearity (the O(m+n) bound of [AKM+87], Figure 1.1's workhorse).
#include <gtest/gtest.h>

#include <atomic>

#include "monge/array.hpp"
#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "monge/smawk.hpp"
#include "monge/staircase_seq.hpp"
#include "support/rng.hpp"

namespace pmonge::monge {
namespace {

struct Dims {
  std::size_t m, n;
};

class SmawkRandom : public ::testing::TestWithParam<Dims> {};

TEST_P(SmawkRandom, MinimaMatchesBrute) {
  Rng rng(100 + GetParam().m * 7 + GetParam().n);
  for (int t = 0; t < 8; ++t) {
    const auto a = random_monge(GetParam().m, GetParam().n, rng,
                                /*maxd=*/3, /*maxoff=*/20);  // many ties
    EXPECT_EQ(smawk_row_minima(a), row_minima_brute(a));
  }
}

TEST_P(SmawkRandom, MaximaMongeMatchesBrute) {
  Rng rng(200 + GetParam().m * 7 + GetParam().n);
  for (int t = 0; t < 8; ++t) {
    const auto a = random_monge(GetParam().m, GetParam().n, rng, 3, 20);
    EXPECT_EQ(smawk_row_maxima_monge(a), row_maxima_brute(a));
  }
}

TEST_P(SmawkRandom, MinimaInverseMongeMatchesBrute) {
  Rng rng(300 + GetParam().m * 7 + GetParam().n);
  for (int t = 0; t < 8; ++t) {
    const auto a =
        random_inverse_monge(GetParam().m, GetParam().n, rng, 3, 20);
    EXPECT_EQ(smawk_row_minima_inverse_monge(a), row_minima_brute(a));
  }
}

TEST_P(SmawkRandom, MaximaInverseMongeMatchesBrute) {
  Rng rng(400 + GetParam().m * 7 + GetParam().n);
  for (int t = 0; t < 8; ++t) {
    const auto a =
        random_inverse_monge(GetParam().m, GetParam().n, rng, 3, 20);
    EXPECT_EQ(smawk_row_maxima_inverse_monge(a), row_maxima_brute(a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SmawkRandom,
    ::testing::Values(Dims{1, 1}, Dims{1, 17}, Dims{17, 1}, Dims{2, 2},
                      Dims{5, 5}, Dims{16, 16}, Dims{33, 7}, Dims{7, 33},
                      Dims{64, 64}, Dims{128, 3}, Dims{3, 128},
                      Dims{100, 101}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n);
    });

TEST(Smawk, RealValuedArray) {
  Rng rng(17);
  const auto a = random_monge_real(60, 45, rng);
  EXPECT_EQ(smawk_row_minima(a), row_minima_brute(a));
}

TEST(Smawk, ProbeCountIsLinear) {
  // Count entry evaluations through an implicit array; SMAWK must stay
  // within c*(m+n) while brute force probes m*n.
  Rng rng(18);
  const std::size_t m = 512, n = 512;
  const auto base = random_monge(m, n, rng);
  std::atomic<std::size_t> probes{0};
  auto counted = make_func_array<std::int64_t>(
      m, n, [&](std::size_t i, std::size_t j) {
        probes.fetch_add(1, std::memory_order_relaxed);
        return base(i, j);
      });
  smawk_row_minima(counted);
  EXPECT_LE(probes.load(), 8 * (m + n));
}

TEST(Smawk, EmptyAndDegenerate) {
  DenseArray<int> empty(0, 0);
  EXPECT_TRUE(smawk_row_minima(empty).empty());
  DenseArray<int> onecell(1, 1, 42);
  const auto r = smawk_row_minima(onecell);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (RowOpt<int>{42, 0}));
}

TEST(Smawk, ArgminMonotoneAcrossRows) {
  // Property: leftmost argmins of a Monge array are non-decreasing.
  Rng rng(19);
  for (int t = 0; t < 10; ++t) {
    const auto a = random_monge(40, 60, rng, 4, 50);
    const auto mins = smawk_row_minima(a);
    for (std::size_t i = 1; i < mins.size(); ++i) {
      EXPECT_LE(mins[i - 1].col, mins[i].col);
    }
  }
}

// --- sequential staircase solver --------------------------------------

TEST(StaircaseSeq, MinimaMatchesBruteRandom) {
  Rng rng(20);
  for (int t = 0; t < 30; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    const auto inst = random_staircase_monge(m, n, rng);
    StaircaseArray<DenseArray<std::int64_t>> s(inst.base, inst.frontier);
    EXPECT_EQ(staircase_row_minima_seq(s), row_minima_brute(s));
  }
}

TEST(StaircaseSeq, MaximaMatchesBruteRandom) {
  Rng rng(21);
  for (int t = 0; t < 30; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    const auto inst = random_staircase_monge(m, n, rng);
    StaircaseArray<DenseArray<std::int64_t>> s(inst.base, inst.frontier);
    EXPECT_EQ(staircase_row_maxima_seq(s), row_maxima_brute(s));
  }
}

TEST(StaircaseSeq, FullFrontierEqualsPlainSmawk) {
  Rng rng(22);
  const auto a = random_monge(30, 40, rng);
  StaircaseArray<decltype(a)> s(a, std::vector<std::size_t>(30, 40));
  EXPECT_EQ(staircase_row_minima_seq(s), smawk_row_minima(a));
}

TEST(StaircaseSeq, AllInfiniteArray) {
  Rng rng(23);
  const auto a = random_monge(5, 6, rng);
  StaircaseArray<decltype(a)> s(a, std::vector<std::size_t>(5, 0));
  const auto mins = staircase_row_minima_seq(s);
  for (const auto& r : mins) {
    EXPECT_EQ(r.col, kNoCol);
    EXPECT_TRUE(is_infinite(r.value));
  }
}

}  // namespace
}  // namespace pmonge::monge
