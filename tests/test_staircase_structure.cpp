// Structural invariants of the canonical-segment decomposition behind
// Theorem 2.3 (our analogue of the paper's Figure 2.1/2.2 partition):
// the segment jobs must tile the finite staircase region *exactly* --
// every finite cell covered once, every infinite cell never -- with at
// most lg n jobs per row, power-of-two aligned columns, and contiguous
// row blocks.  These invariants are what make the per-job Monge searches
// collectively correct.
#include <gtest/gtest.h>

#include "monge/generators.hpp"
#include "par/staircase_rowminima.hpp"
#include "support/rng.hpp"
#include "support/series.hpp"

namespace pmonge::par {
namespace {

using pram::Machine;
using pram::Model;

std::vector<detail::SegmentJob> jobs_for(const std::vector<std::size_t>& f,
                                         std::size_t n) {
  Machine scratch(Model::CREW);
  return detail::segment_jobs(scratch, f, n);
}

TEST(StaircaseStructure, JobsTileTheFiniteRegionExactly) {
  Rng rng(301);
  for (int t = 0; t < 20; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    const auto f = monge::random_frontier(m, n, rng);
    const auto jobs = jobs_for(f, n);
    std::vector<std::vector<int>> cover(m, std::vector<int>(n, 0));
    for (const auto& j : jobs) {
      ASSERT_LE(j.row1, m);
      ASSERT_LE(j.col0 + j.width, n);
      for (std::size_t r = j.row0; r < j.row1; ++r) {
        for (std::size_t c = j.col0; c < j.col0 + j.width; ++c) {
          cover[r][c] += 1;
        }
      }
    }
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        EXPECT_EQ(cover[r][c], c < f[r] ? 1 : 0)
            << "cell (" << r << "," << c << ") frontier " << f[r];
      }
    }
  }
}

TEST(StaircaseStructure, SegmentsArePowerOfTwoAligned) {
  Rng rng(302);
  const auto f = monge::random_frontier(80, 100, rng);
  for (const auto& j : jobs_for(f, 100)) {
    EXPECT_TRUE(pmonge::is_pow2(j.width));
    EXPECT_EQ(j.col0 % j.width, 0u);  // aligned to its own width
    EXPECT_EQ(j.level, static_cast<std::size_t>(floor_lg(j.width)));
  }
}

TEST(StaircaseStructure, AtMostLgNJobsPerRow) {
  Rng rng(303);
  for (int t = 0; t < 10; ++t) {
    const std::size_t m = 50, n = 1 + static_cast<std::size_t>(
                                        rng.uniform_int(0, 200));
    const auto f = monge::random_frontier(m, n, rng);
    std::vector<std::size_t> per_row(m, 0);
    for (const auto& j : jobs_for(f, n)) {
      for (std::size_t r = j.row0; r < j.row1; ++r) per_row[r]++;
    }
    for (std::size_t r = 0; r < m; ++r) {
      EXPECT_LE(per_row[r],
                static_cast<std::size_t>(std::max(1, ceil_lg(n + 1))));
      // And exactly popcount(f_r): one segment per set bit.
      EXPECT_EQ(per_row[r],
                static_cast<std::size_t>(__builtin_popcountll(
                    static_cast<unsigned long long>(f[r]))));
    }
  }
}

TEST(StaircaseStructure, LevelsAreColumnDisjoint) {
  // Within one level (fixed width), jobs must not overlap in (row, col):
  // the WorkEfficient schedule's per-level phases rely on this.
  Rng rng(304);
  const std::size_t m = 70, n = 90;
  const auto f = monge::random_frontier(m, n, rng);
  const auto jobs = jobs_for(f, n);
  for (std::size_t a = 0; a < jobs.size(); ++a) {
    for (std::size_t b = a + 1; b < jobs.size(); ++b) {
      if (jobs[a].level != jobs[b].level) continue;
      const bool rows_overlap =
          jobs[a].row0 < jobs[b].row1 && jobs[b].row0 < jobs[a].row1;
      const bool cols_overlap =
          jobs[a].col0 < jobs[b].col0 + jobs[b].width &&
          jobs[b].col0 < jobs[a].col0 + jobs[a].width;
      EXPECT_FALSE(rows_overlap && cols_overlap)
          << "jobs " << a << " and " << b << " overlap at level "
          << jobs[a].level;
    }
  }
}

TEST(StaircaseStructure, DegenerateFrontiers) {
  // All-zero frontier: no jobs.  Full frontier of power-of-two width:
  // exactly one job per (row-block, bit) with a single set bit.
  EXPECT_TRUE(jobs_for(std::vector<std::size_t>(5, 0), 8).empty());
  const auto full = jobs_for(std::vector<std::size_t>(5, 8), 8);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].width, 8u);
  EXPECT_EQ(full[0].row0, 0u);
  EXPECT_EQ(full[0].row1, 5u);
}

TEST(StaircaseStructure, ColumnSplitMatchesOnAdversarialFrontiers) {
  // Strictly-decreasing frontier: every row its own group -- the
  // decomposition's worst case; the three schedules must still agree.
  Rng rng(305);
  const std::size_t n = 96;
  const auto base = monge::random_monge(n, n, rng, 3, 20);
  std::vector<std::size_t> f(n);
  for (std::size_t i = 0; i < n; ++i) f[i] = n - i;
  monge::StaircaseArray<monge::DenseArray<std::int64_t>> s(base, f);
  Machine m1(Model::CRCW_COMMON), m2(Model::CRCW_COMMON),
      m3(Model::CRCW_COMMON);
  const auto a = staircase_row_minima(m1, s, StaircaseSchedule::MaxParallel);
  const auto b =
      staircase_row_minima(m2, s, StaircaseSchedule::WorkEfficient);
  const auto c = staircase_row_minima(m3, s, StaircaseSchedule::ColumnSplit);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace pmonge::par
