// Unit tests for the support layer: integer log/sqrt helpers, shape
// fitting, RNG determinism, table rendering and CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

#include "support/cli.hpp"
#include "support/env.hpp"
#include "support/histogram.hpp"
#include "support/rng.hpp"
#include "support/series.hpp"
#include "support/table.hpp"

namespace pmonge {
namespace {

// Scoped setenv/unsetenv so env-knob tests cannot leak into each other.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(EnvUint, UnsetAndEmptyAreNullopt) {
  EnvVarGuard unset("PMONGE_TEST_KNOB", nullptr);
  EXPECT_FALSE(support::env_uint("PMONGE_TEST_KNOB").has_value());
  EnvVarGuard empty("PMONGE_TEST_KNOB", "");
  EXPECT_FALSE(support::env_uint("PMONGE_TEST_KNOB").has_value());
}

TEST(EnvUint, ParsesCleanIntegers) {
  EnvVarGuard g("PMONGE_TEST_KNOB", "8");
  EXPECT_EQ(support::env_uint("PMONGE_TEST_KNOB"), 8u);
  EnvVarGuard g0("PMONGE_TEST_KNOB", "0");
  EXPECT_EQ(support::env_uint("PMONGE_TEST_KNOB"), 0u);
}

TEST(EnvUint, MalformedThrowsQuotingTheValue) {
  // The bug class this guards against: PMONGE_THREADS=1O (letter O)
  // silently becoming the default and changing performance unannounced.
  for (const char* bad : {"1O", "-1", "+3", " 4", "4 ", "3.5", "0x10", "o"}) {
    EnvVarGuard g("PMONGE_THREADS", bad);
    try {
      (void)support::env_uint("PMONGE_THREADS");
      FAIL() << "expected throw for PMONGE_THREADS=" << bad;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("PMONGE_THREADS"), std::string::npos) << what;
      EXPECT_NE(what.find(bad), std::string::npos)
          << "message must quote the offending string: " << what;
    }
  }
}

TEST(EnvUint, OutOfRangeThrows) {
  EnvVarGuard g("PMONGE_GRAIN", "99999999999999999999999999");
  EXPECT_THROW((void)support::env_uint("PMONGE_GRAIN"), std::invalid_argument);
}

TEST(EnvUintOr, DefaultAndClamp) {
  EnvVarGuard unset("PMONGE_FUZZ_SEED", nullptr);
  EXPECT_EQ(support::env_uint_or("PMONGE_FUZZ_SEED", 42), 42u);
  EnvVarGuard zero("PMONGE_FUZZ_SEED", "0");
  EXPECT_EQ(support::env_uint_or("PMONGE_FUZZ_SEED", 42, 1), 1u);
  EnvVarGuard bad("PMONGE_FUZZ_SEED", "12junk");
  EXPECT_THROW((void)support::env_uint_or("PMONGE_FUZZ_SEED", 42),
               std::invalid_argument);
}

TEST(Histogram, CounterAndLogHistogram) {
  support::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  support::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_bound(0.5), 0u);
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 100u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1106u);
  // Quantile bounds are bucket upper bounds: monotone in q and >= the
  // true quantile.
  EXPECT_LE(h.quantile_bound(0.5), h.quantile_bound(0.99));
  EXPECT_GE(h.quantile_bound(1.0), 1000u);
}

TEST(Histogram, QuantileBoundEmpty) {
  support::LogHistogram h;
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile_bound(q), 0u) << "q=" << q;
  }
}

TEST(Histogram, QuantileBoundSingleSample) {
  // One sample: every q maps to rank 0, so every q reports the sample's
  // bucket edge.  100 has bit width 7 -> bucket [64, 128) -> bound 127.
  support::LogHistogram h;
  h.record(100);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile_bound(q), 127u) << "q=" << q;
  }
  // A single zero sample sits in bucket 0, whose edge is 0.
  support::LogHistogram z;
  z.record(0);
  EXPECT_EQ(z.quantile_bound(0.5), 0u);
}

TEST(Histogram, QuantileBoundAllSameBucket) {
  // Every sample in [64, 128): q = 0 and q = 1 must agree exactly on the
  // shared bucket edge 127.
  support::LogHistogram h;
  for (std::uint64_t v = 64; v < 128; ++v) h.record(v);
  EXPECT_EQ(h.quantile_bound(0.0), 127u);
  EXPECT_EQ(h.quantile_bound(0.5), 127u);
  EXPECT_EQ(h.quantile_bound(1.0), 127u);
  // Out-of-range q clamps rather than misbehaving.
  EXPECT_EQ(h.quantile_bound(-1.0), 127u);
  EXPECT_EQ(h.quantile_bound(2.0), 127u);
}

TEST(Histogram, SparseBucketsMatchRecords) {
  support::LogHistogram h;
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1
  h.record(100);  // bucket 7
  h.record(100);
  const auto b = h.buckets();
  ASSERT_EQ(b.size(), support::LogHistogram::kBuckets);
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[7], 2u);
  std::uint64_t total = 0;
  for (const auto n : b) total += n;
  EXPECT_EQ(total, h.count());
}

TEST(CeilLg, SmallValues) {
  EXPECT_EQ(ceil_lg(1), 0);
  EXPECT_EQ(ceil_lg(2), 1);
  EXPECT_EQ(ceil_lg(3), 2);
  EXPECT_EQ(ceil_lg(4), 2);
  EXPECT_EQ(ceil_lg(5), 3);
  EXPECT_EQ(ceil_lg(1024), 10);
  EXPECT_EQ(ceil_lg(1025), 11);
}

TEST(CeilLg, RejectsZero) { EXPECT_THROW(ceil_lg(0), std::invalid_argument); }

TEST(FloorLg, Values) {
  EXPECT_EQ(floor_lg(1), 0);
  EXPECT_EQ(floor_lg(2), 1);
  EXPECT_EQ(floor_lg(3), 1);
  EXPECT_EQ(floor_lg(1023), 9);
  EXPECT_EQ(floor_lg(1024), 10);
}

TEST(CeilLgLg, Values) {
  EXPECT_EQ(ceil_lglg(1), 0);
  EXPECT_EQ(ceil_lglg(2), 0);
  EXPECT_EQ(ceil_lglg(4), 1);
  EXPECT_EQ(ceil_lglg(16), 2);
  EXPECT_EQ(ceil_lglg(256), 3);
  EXPECT_EQ(ceil_lglg(65536), 4);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
}

TEST(IsPow2, Values) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Isqrt, ExactAndBetween) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(99), 9u);
  EXPECT_EQ(isqrt(100), 10u);
  EXPECT_EQ(isqrt(1'000'000'000'000ULL), 1'000'000u);
}

TEST(ShapeFit, PerfectLgSeries) {
  std::vector<SeriesPoint> pts;
  for (double n : {64.0, 256.0, 1024.0, 4096.0}) {
    pts.push_back({n, 3.0 * std::log2(n)});
  }
  const auto fit = fit_shape(pts, shape_lg());
  EXPECT_NEAR(fit.constant, 3.0, 1e-9);
  EXPECT_NEAR(fit.max_rel_dev, 0.0, 1e-9);
  EXPECT_TRUE(matches_shape(pts, shape_lg(), 0.01));
}

TEST(ShapeFit, LinearSeriesIsNotLg) {
  std::vector<SeriesPoint> pts;
  for (double n : {64.0, 256.0, 1024.0, 4096.0}) pts.push_back({n, 2.0 * n});
  EXPECT_FALSE(matches_shape(pts, shape_lg(), 0.5));
  EXPECT_TRUE(matches_shape(pts, shape_linear(), 0.01));
}

TEST(ShapeFit, RatioEndpointsExposeGrowth) {
  std::vector<SeriesPoint> pts{{64, 6}, {4096, 12}};
  const auto fit = fit_shape(pts, shape_lg());
  EXPECT_NEAR(fit.ratio_first, 1.0, 1e-9);
  EXPECT_NEAR(fit.ratio_last, 1.0, 1e-9);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i) diff += (a() != b());
  EXPECT_GT(diff, 0);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Table, RendersAlignedColumns) {
  Table t({"model", "n", "steps"});
  t.add_row({"CRCW", "1024", "37"});
  t.add_row({"CREW", "1024", "122"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("CRCW"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumGroupsDigits) {
  EXPECT_EQ(Table::num(0), "0");
  EXPECT_EQ(Table::num(999), "999");
  EXPECT_EQ(Table::num(1000), "1,000");
  EXPECT_EQ(Table::num(1234567), "1,234,567");
}

TEST(Cli, ParsesFlagsAndPositional) {
  // Note: a bare `--flag` followed by a non-flag token would consume it
  // as a value (the usual `--key value` ambiguity), so boolean flags go
  // last or use `--flag=1`.
  const char* argv[] = {"prog", "--n=128", "--verbose", "--reps", "3",
                        "input.txt"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get_int("reps", 0), 3);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.get("missing", "fallback"), "fallback");
}

}  // namespace
}  // namespace pmonge
