// Tests for the paper-map header (par/theorems.hpp) and the
// staircase-inverse-Monge variants: each named theorem entry point must
// agree with its oracle, and the Lemma 2.1 rectangular bound shape must
// hold in both aspect regimes.
#include <gtest/gtest.h>

#include "monge/brute.hpp"
#include "monge/generators.hpp"
#include "monge/validate.hpp"
#include "par/theorems.hpp"
#include "support/rng.hpp"

namespace pmonge::par {
namespace {

using monge::DenseArray;
using monge::StaircaseArray;
using pram::Machine;
using pram::Model;

TEST(Theorems, Lemma21RectangularBothRegimes) {
  Rng rng(91);
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{2048, 64},
                      {64, 2048}}) {
    const auto a = monge::random_monge(m, n, rng);
    Machine mach(Model::CRCW_COMMON);
    EXPECT_EQ(lemma_2_1_row_minima(mach, a), monge::row_minima_brute(a));
    // O(lg m + lg n) depth, generously bounded.
    EXPECT_LE(mach.meter().time,
              20u * static_cast<std::uint64_t>(ceil_lg(m) + ceil_lg(n)))
        << m << "x" << n;
  }
}

TEST(Theorems, Theorem23AndCorollary24) {
  Rng rng(92);
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{128, 128},
                      {200, 60},
                      {60, 200}}) {
    const auto inst = monge::random_staircase_monge(m, n, rng);
    StaircaseArray<DenseArray<std::int64_t>> s(inst.base, inst.frontier);
    Machine mach(Model::CRCW_COMMON);
    const auto want = monge::row_minima_brute(s);
    EXPECT_EQ(theorem_2_3_row_minima(mach, s), want);
    EXPECT_EQ(corollary_2_4_row_minima(mach, s), want);
  }
}

TEST(Theorems, Theorem33MatchesPramStaircase) {
  Rng rng(93);
  const std::size_t n = 48;
  const auto inst = monge::random_staircase_monge(n, n, rng);
  StaircaseArray<DenseArray<std::int64_t>> s(inst.base, inst.frontier);
  const auto want = monge::row_minima_brute(s);
  auto [res, agg] = theorem_3_3_row_minima<std::int64_t>(
      net::TopologyKind::Hypercube, n, n, inst.frontier,
      [&](std::size_t i, std::size_t j) { return inst.base(i, j); });
  EXPECT_EQ(res, want);
  EXPECT_GT(agg.total_steps(), 0u);
  EXPECT_GT(agg.physical_nodes, 0u);
}

TEST(Theorems, Theorem34MatchesBrute) {
  Rng rng(94);
  const std::size_t n = 16;
  const auto inst = monge::random_composite(n, n, n, rng);
  const auto want = monge::tube_maxima_brute(inst.d, inst.e);
  for (auto kind :
       {net::TopologyKind::Hypercube, net::TopologyKind::ShuffleExchange}) {
    auto [plane, agg] = theorem_3_4_tube_maxima(kind, inst.d, inst.e);
    EXPECT_EQ(plane.opt, want.opt) << net::topology_name(kind);
    EXPECT_EQ(agg.physical_nodes, 2 * n * n);  // n slices x 2n nodes
  }
}

TEST(Theorems, Theorem34RejectsNonPow2Cube) {
  Rng rng(95);
  const auto inst = monge::random_composite(12, 12, 12, rng);
  EXPECT_THROW(
      theorem_3_4_tube_maxima(net::TopologyKind::Hypercube, inst.d, inst.e),
      std::invalid_argument);
}

// --- staircase-inverse-Monge variants ----------------------------------

TEST(StaircaseInverse, MinimaAndMaximaMatchBrute) {
  Rng rng(96);
  for (int t = 0; t < 15; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 60));
    // Build a staircase-inverse-Monge instance: inverse-Monge base plus a
    // non-increasing frontier.
    const auto base = monge::random_inverse_monge(m, n, rng, 3, 25);
    const auto frontier = monge::random_frontier(m, n, rng);
    StaircaseArray<DenseArray<std::int64_t>> s(base, frontier);
    EXPECT_TRUE(monge::is_staircase_inverse_monge(s));
    Machine m1(Model::CRCW_COMMON), m2(Model::CREW);
    EXPECT_EQ(staircase_inverse_row_minima(m1, s),
              monge::row_minima_brute(s));
    EXPECT_EQ(staircase_inverse_row_maxima(m2, s),
              monge::row_maxima_brute(s));
  }
}

TEST(StaircaseInverse, AllInfiniteRowsKeepSentinels) {
  Rng rng(97);
  const auto base = monge::random_inverse_monge(5, 6, rng);
  StaircaseArray<DenseArray<std::int64_t>> s(
      base, std::vector<std::size_t>(5, 0));
  Machine mach(Model::CRCW_COMMON);
  const auto mins = staircase_inverse_row_minima(mach, s);
  const auto maxs = staircase_inverse_row_maxima(mach, s);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(mins[i].col, monge::kNoCol);
    EXPECT_TRUE(monge::is_infinite(mins[i].value));
    EXPECT_EQ(maxs[i].col, monge::kNoCol);
  }
}

}  // namespace
}  // namespace pmonge::par
