// Transportation tests: Hoffman's theorem in action -- the greedy rule is
// exactly optimal on Monge cost arrays (certified against the exhaustive
// oracle), and demonstrably suboptimal on a non-Monge cost array.
#include <gtest/gtest.h>

#include "apps/transportation.hpp"
#include "monge/generators.hpp"
#include "monge/validate.hpp"
#include "support/rng.hpp"
#include "support/series.hpp"

namespace pmonge::apps {
namespace {

std::vector<std::int64_t> random_vector(std::size_t n, std::int64_t total,
                                        Rng& rng) {
  // Non-negative integers summing to `total`.
  std::vector<std::int64_t> v(n, 0);
  for (std::int64_t t = 0; t < total; ++t) {
    v[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))] += 1;
  }
  return v;
}

TEST(Transportation, GreedyFeasible) {
  Rng rng(81);
  for (int t = 0; t < 20; ++t) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    auto cost = monge::random_monge(m, n, rng, 4, 10);
    // Make costs non-negative (offsets preserve Monge).
    std::int64_t mn = 0;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) mn = std::min(mn, cost(i, j));
    }
    auto shifted = monge::make_func_array<std::int64_t>(
        m, n, [&, mn](std::size_t i, std::size_t j) { return cost(i, j) - mn; });
    const auto supply = random_vector(m, 9, rng);
    const auto demand = random_vector(n, 9, rng);
    const auto plan = transport_greedy(shifted, supply, demand);
    // Feasibility: shipments conserve supply and demand.
    std::vector<std::int64_t> s(m, 0), d(n, 0);
    std::int64_t recomputed = 0;
    for (const auto& sh : plan.shipments) {
      EXPECT_GT(sh.amount, 0);
      s[sh.from] += sh.amount;
      d[sh.to] += sh.amount;
      recomputed += sh.amount * shifted(sh.from, sh.to);
    }
    EXPECT_EQ(s, supply);
    EXPECT_EQ(d, demand);
    EXPECT_EQ(recomputed, plan.cost);
    // Staircase structure: shipments sorted in both coordinates.
    for (std::size_t k = 1; k < plan.shipments.size(); ++k) {
      EXPECT_GE(plan.shipments[k].from, plan.shipments[k - 1].from);
      EXPECT_GE(plan.shipments[k].to, plan.shipments[k - 1].to);
    }
  }
}

TEST(Transportation, GreedyOptimalOnMongeCosts) {
  Rng rng(82);
  for (int t = 0; t < 25; ++t) {
    const std::size_t m = 2 + static_cast<std::size_t>(rng.uniform_int(0, 1));
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 1));
    auto base = monge::random_monge(m, n, rng, 4, 6);
    std::int64_t mn = 0;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) mn = std::min(mn, base(i, j));
    }
    auto cost = monge::make_func_array<std::int64_t>(
        m, n,
        [&, mn](std::size_t i, std::size_t j) { return base(i, j) - mn; });
    const auto supply = random_vector(m, 5, rng);
    const auto demand = random_vector(n, 5, rng);
    const auto greedy = transport_greedy(cost, supply, demand);
    const auto brute = transport_brute(cost, supply, demand);
    EXPECT_EQ(greedy.cost, brute) << "m=" << m << " n=" << n;
  }
}

TEST(Transportation, GreedySuboptimalOnNonMongeCosts) {
  // The classic anti-Monge 2x2: greedy ships along the expensive
  // diagonal.
  monge::DenseArray<std::int64_t> cost(2, 2, 0);
  cost.at(0, 0) = 10;
  cost.at(0, 1) = 0;
  cost.at(1, 0) = 0;
  cost.at(1, 1) = 10;
  ASSERT_FALSE(monge::is_monge(cost));
  const std::vector<std::int64_t> supply = {1, 1}, demand = {1, 1};
  const auto greedy = transport_greedy(cost, supply, demand);
  const auto brute = transport_brute(cost, supply, demand);
  EXPECT_EQ(brute, 0);
  EXPECT_GT(greedy.cost, brute);  // Hoffman's hypothesis is necessary
}

TEST(Transportation, ParallelVariantMatchesAndIsShallow) {
  Rng rng(83);
  const std::size_t m = 300, n = 400;
  auto base = monge::transportation_monge(m, n, rng);
  auto cost = monge::make_func_array<std::int64_t>(
      m, n, [&](std::size_t i, std::size_t j) {
        return static_cast<std::int64_t>(base(i, j));
      });
  const auto supply = random_vector(m, 2000, rng);
  const auto demand = random_vector(n, 2000, rng);
  pram::Machine mach(pram::Model::CREW);
  const auto par = transport_greedy_par(mach, cost, supply, demand);
  const auto seq = transport_greedy(cost, supply, demand);
  EXPECT_EQ(par.cost, seq.cost);
  EXPECT_LE(mach.meter().time, 8u * ceil_lg(m + n));
}

TEST(Transportation, ValidationErrors) {
  monge::DenseArray<std::int64_t> cost(2, 2, 1);
  EXPECT_THROW(transport_greedy(cost, {1}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(transport_greedy(cost, {1, 2}, {1, 1}),
               std::invalid_argument);  // imbalance
  EXPECT_THROW(transport_greedy(cost, {-1, 2}, {1, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pmonge::apps
